package dlm

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ngdc/internal/cluster"
	"ngdc/internal/fabric"
	"ngdc/internal/sim"
	"ngdc/internal/verbs"
)

var allKinds = []Kind{SRSL, DQNL, NCoSED}

func testManager(seed int64, kind Kind, nNodes, nLocks int) (*sim.Env, *Manager, []*cluster.Node) {
	env := sim.NewEnv(seed)
	nw := verbs.NewNetwork(env, fabric.DefaultParams())
	nodes := make([]*cluster.Node, nNodes)
	for i := range nodes {
		nodes[i] = cluster.NewNode(env, i, 2, 1<<30)
	}
	m := New(nw, nodes, Options{Kind: kind, NumLocks: nLocks})
	return env, m, nodes
}

// checker validates lock-semantics invariants as grants and releases
// happen (the simulation is single-threaded, so plain fields suffice).
type checker struct {
	t          *testing.T
	kind       Kind
	excl       int
	shared     int
	violations int
}

func (ck *checker) acquired(mode Mode) {
	if mode == Exclusive {
		if ck.excl != 0 || ck.shared != 0 {
			ck.t.Errorf("%v: exclusive granted while %d excl / %d shared held", ck.kind, ck.excl, ck.shared)
			ck.violations++
		}
		ck.excl++
		return
	}
	if ck.excl != 0 {
		ck.t.Errorf("%v: shared granted while exclusive held", ck.kind)
		ck.violations++
	}
	ck.shared++
}

func (ck *checker) released(mode Mode) {
	if mode == Exclusive {
		ck.excl--
	} else {
		ck.shared--
	}
}

func TestMutualExclusionAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			env, m, nodes := testManager(1, kind, 6, 1)
			defer env.Shutdown()
			ck := &checker{t: t, kind: kind}
			for i := 1; i < 6; i++ {
				node := nodes[i]
				env.Go(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
					c := m.Client(node.ID)
					for k := 0; k < 5; k++ {
						p.Sleep(time.Duration(env.Rand().Intn(200)) * time.Microsecond)
						c.Lock(p, 0, Exclusive)
						ck.acquired(Exclusive)
						p.Sleep(50 * time.Microsecond)
						ck.released(Exclusive)
						c.Unlock(p, 0, Exclusive)
					}
				})
			}
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSharedReadersCoexist(t *testing.T) {
	// SRSL and N-CoSED support true shared mode: concurrent readers must
	// overlap in time.
	for _, kind := range []Kind{SRSL, NCoSED} {
		t.Run(kind.String(), func(t *testing.T) {
			env, m, nodes := testManager(1, kind, 6, 1)
			defer env.Shutdown()
			maxConcurrent, cur := 0, 0
			for i := 1; i < 6; i++ {
				node := nodes[i]
				env.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
					c := m.Client(node.ID)
					c.Lock(p, 0, Shared)
					cur++
					if cur > maxConcurrent {
						maxConcurrent = cur
					}
					p.Sleep(time.Millisecond)
					cur--
					c.Unlock(p, 0, Shared)
				})
			}
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
			if maxConcurrent < 5 {
				t.Fatalf("%v: only %d readers overlapped, want 5", kind, maxConcurrent)
			}
		})
	}
}

func TestReadersExcludeWriter(t *testing.T) {
	for _, kind := range []Kind{SRSL, NCoSED} {
		t.Run(kind.String(), func(t *testing.T) {
			env, m, nodes := testManager(1, kind, 6, 1)
			defer env.Shutdown()
			ck := &checker{t: t, kind: kind}
			for i := 1; i < 5; i++ {
				node := nodes[i]
				env.Go(fmt.Sprintf("reader%d", i), func(p *sim.Proc) {
					c := m.Client(node.ID)
					for k := 0; k < 3; k++ {
						p.Sleep(time.Duration(env.Rand().Intn(300)) * time.Microsecond)
						c.Lock(p, 0, Shared)
						ck.acquired(Shared)
						p.Sleep(80 * time.Microsecond)
						ck.released(Shared)
						c.Unlock(p, 0, Shared)
					}
				})
			}
			env.Go("writer", func(p *sim.Proc) {
				c := m.Client(nodes[5].ID)
				for k := 0; k < 3; k++ {
					p.Sleep(time.Duration(env.Rand().Intn(300)) * time.Microsecond)
					c.Lock(p, 0, Exclusive)
					ck.acquired(Exclusive)
					p.Sleep(100 * time.Microsecond)
					ck.released(Exclusive)
					c.Unlock(p, 0, Exclusive)
				}
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestManyLocksIndependent(t *testing.T) {
	// Operations on distinct locks must not serialize against each other.
	for _, kind := range allKinds {
		env, m, nodes := testManager(1, kind, 4, 8)
		defer env.Shutdown()
		done := 0
		for i := 1; i < 4; i++ {
			node := nodes[i]
			lock := i * 2
			env.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				c := m.Client(node.ID)
				c.Lock(p, lock, Exclusive)
				p.Sleep(10 * time.Millisecond)
				c.Unlock(p, lock, Exclusive)
				done++
			})
		}
		if err := env.Run(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// With independent locks everything overlaps: ~10ms total, not 30.
		if env.Now() > sim.Time(15*time.Millisecond) {
			t.Fatalf("%v: independent locks serialized: took %v", kind, env.Now())
		}
		if done != 3 {
			t.Fatalf("%v: %d workers finished", kind, done)
		}
	}
}

func TestUncontendedLatencyOneSidedBeatsServer(t *testing.T) {
	// An uncontended N-CoSED exclusive acquire is one CAS (~one atomic
	// RTT); SRSL pays two messages plus server CPU.
	lat := func(kind Kind) time.Duration {
		env, m, nodes := testManager(1, kind, 3, 1)
		defer env.Shutdown()
		var d time.Duration
		env.Go("w", func(p *sim.Proc) {
			c := m.Client(nodes[1].ID)
			start := p.Now()
			c.Lock(p, 0, Exclusive)
			d = time.Duration(p.Now() - start)
			c.Unlock(p, 0, Exclusive)
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	srsl, dqnl, nco := lat(SRSL), lat(DQNL), lat(NCoSED)
	if nco >= srsl {
		t.Fatalf("N-CoSED uncontended %v not below SRSL %v", nco, srsl)
	}
	if dqnl >= srsl {
		t.Fatalf("DQNL uncontended %v not below SRSL %v", dqnl, srsl)
	}
}

func TestUncontendedSharedIsOneAtomic(t *testing.T) {
	env, m, nodes := testManager(1, NCoSED, 3, 1)
	defer env.Shutdown()
	pp := fabric.DefaultParams()
	var d time.Duration
	env.Go("w", func(p *sim.Proc) {
		c := m.Client(nodes[1].ID)
		start := p.Now()
		c.Lock(p, 0, Shared)
		d = time.Duration(p.Now() - start)
		c.Unlock(p, 0, Shared)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if d != pp.IBAtomicLatency {
		t.Fatalf("shared acquire took %v, want one atomic RTT %v", d, pp.IBAtomicLatency)
	}
}

func TestUnderRemoteLoadOneSidedUnaffected(t *testing.T) {
	// Saturate the home node's CPU: SRSL (whose server needs that CPU)
	// must slow dramatically; N-CoSED's one-sided fast path must not.
	lat := func(kind Kind, loaded bool) time.Duration {
		env, m, nodes := testManager(1, kind, 3, 1)
		defer env.Shutdown()
		if loaded {
			nodes[0].SpawnLoad(8, 5*time.Millisecond, 0)
		}
		var d time.Duration
		env.Go("w", func(p *sim.Proc) {
			p.Sleep(20 * time.Millisecond)
			c := m.Client(nodes[1].ID)
			start := p.Now()
			c.Lock(p, 0, Exclusive)
			d = time.Duration(p.Now() - start)
			c.Unlock(p, 0, Exclusive)
		})
		if err := env.RunUntil(sim.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		return d
	}
	ncoLoaded := lat(NCoSED, true)
	ncoIdle := lat(NCoSED, false)
	srslLoaded := lat(SRSL, true)
	srslIdle := lat(SRSL, false)
	if ncoLoaded > 2*ncoIdle {
		t.Fatalf("N-CoSED degraded under remote load: %v vs %v", ncoLoaded, ncoIdle)
	}
	if srslLoaded < 5*srslIdle {
		t.Fatalf("SRSL should degrade under home load: %v vs %v", srslLoaded, srslIdle)
	}
}

func TestCascadeSharedShape(t *testing.T) {
	// Fig 5a: shared waiters behind an exclusive. N-CoSED grants the
	// cohort in a burst: its cascade must stay far below DQNL's serial
	// chain and below SRSL at 16 waiters.
	get := func(kind Kind) time.Duration {
		r, err := Cascade(kind, Shared, 16, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return r.Last
	}
	nco, dqnl, srsl := get(NCoSED), get(DQNL), get(SRSL)
	if dqnl < 3*nco {
		t.Fatalf("shared cascade: DQNL %v vs N-CoSED %v — serialization penalty missing", dqnl, nco)
	}
	if srsl <= nco {
		t.Fatalf("shared cascade: SRSL %v must exceed N-CoSED %v", srsl, nco)
	}
}

func TestCascadeExclusiveShape(t *testing.T) {
	// Fig 5b: exclusive chains serialize for everyone; N-CoSED's direct
	// peer hand-off must be the cheapest, SRSL the most expensive.
	get := func(kind Kind) time.Duration {
		r, err := Cascade(kind, Exclusive, 16, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return r.Last
	}
	nco, dqnl, srsl := get(NCoSED), get(DQNL), get(SRSL)
	if !(nco < dqnl && dqnl < srsl) {
		t.Fatalf("exclusive cascade ordering wrong: N-CoSED=%v DQNL=%v SRSL=%v", nco, dqnl, srsl)
	}
}

func TestCascadeGrowsWithWaiters(t *testing.T) {
	for _, kind := range allKinds {
		small, err := Cascade(kind, Exclusive, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		large, err := Cascade(kind, Exclusive, 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		if large.Last <= small.Last {
			t.Fatalf("%v: cascade not growing: %v (2) vs %v (12)", kind, small.Last, large.Last)
		}
		if large.MeanGrant() <= 0 {
			t.Fatalf("%v: bad mean grant", kind)
		}
	}
}

func TestKindAndModeStrings(t *testing.T) {
	if SRSL.String() != "SRSL" || DQNL.String() != "DQNL" || NCoSED.String() != "N-CoSED" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind name")
	}
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatal("mode names wrong")
	}
}

func TestWireRoundTrip(t *testing.T) {
	w := wire{op: opEnqueue, lock: 123456, from: 7, arg: 3}
	got := decodeWire(w.encode())
	if got != w {
		t.Fatalf("round trip %+v -> %+v", w, got)
	}
	if decodeWire(nil) != (wire{}) {
		t.Fatal("short decode not zero")
	}
}

func TestClientPanicsOnBadLock(t *testing.T) {
	env, m, nodes := testManager(1, SRSL, 2, 1)
	defer env.Shutdown()
	env.Go("w", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range lock did not panic")
			}
		}()
		m.Client(nodes[1].ID).Lock(p, 5, Exclusive)
	})
	// The recover happens inside the process; the env run must stay clean.
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if m.NumLocks() != 1 {
		t.Fatal("NumLocks wrong")
	}
}

func TestManagerUnknownClientPanics(t *testing.T) {
	env, m, _ := testManager(1, SRSL, 2, 1)
	defer env.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("unknown client did not panic")
		}
	}()
	m.Client(99)
}

// Property: under any interleaving of exclusive lock/unlock pairs from
// random nodes on random locks, every worker completes (no lost grants)
// and mutual exclusion holds, for all three designs.
func TestPropertyRandomWorkloads(t *testing.T) {
	f := func(seed int64, kindSel uint8, ops []uint8) bool {
		kind := allKinds[int(kindSel)%len(allKinds)]
		if len(ops) > 24 {
			ops = ops[:24]
		}
		env, m, nodes := testManager(seed, kind, 5, 3)
		defer env.Shutdown()
		type hold struct{ excl, shared int }
		holds := map[int]*hold{0: {}, 1: {}, 2: {}}
		type opSpec struct {
			mode  Mode
			delay time.Duration
		}
		// The Client contract allows one outstanding request per
		// (node, lock): group the random ops accordingly and run each
		// group as a sequential chain; groups interleave freely.
		type key struct{ node, lock int }
		groups := map[key][]opSpec{}
		total := 0
		for i, op := range ops {
			k := key{node: 1 + int(op)%4, lock: (int(op) / 4) % 3}
			mode := Exclusive
			if kind != DQNL && op%2 == 0 {
				mode = Shared
			}
			groups[k] = append(groups[k], opSpec{mode: mode, delay: time.Duration(i) * 37 * time.Microsecond})
			total++
		}
		completed, ok := 0, true
		for k, specs := range groups {
			k, specs := k, specs
			node := nodes[k.node]
			env.Go(fmt.Sprintf("chain-%d-%d", k.node, k.lock), func(p *sim.Proc) {
				c := m.Client(node.ID)
				for _, spec := range specs {
					p.SleepUntil(sim.Time(spec.delay))
					c.Lock(p, k.lock, spec.mode)
					h := holds[k.lock]
					if spec.mode == Exclusive {
						if h.excl != 0 || h.shared != 0 {
							ok = false
						}
						h.excl++
					} else {
						if h.excl != 0 {
							ok = false
						}
						h.shared++
					}
					p.Sleep(time.Duration(env.Rand().Intn(100)) * time.Microsecond)
					if spec.mode == Exclusive {
						h.excl--
					} else {
						h.shared--
					}
					c.Unlock(p, k.lock, spec.mode)
					completed++
				}
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		return ok && completed == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a node can never lock the same lock twice concurrently, but
// sequential re-acquisition always works.
func TestPropertySequentialReacquire(t *testing.T) {
	f := func(kindSel uint8, rounds uint8) bool {
		kind := allKinds[int(kindSel)%len(allKinds)]
		n := int(rounds)%8 + 1
		env, m, nodes := testManager(3, kind, 3, 1)
		defer env.Shutdown()
		done := false
		env.Go("w", func(p *sim.Proc) {
			c := m.Client(nodes[1].ID)
			for i := 0; i < n; i++ {
				c.Lock(p, 0, Exclusive)
				p.Sleep(10 * time.Microsecond)
				c.Unlock(p, 0, Exclusive)
			}
			done = true
		})
		if err := env.Run(); err != nil {
			return false
		}
		return done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeShapeHoldsOnIWARP(t *testing.T) {
	// §6: the designs rely on common RDMA features; rerunning Fig 5a
	// under the 10GigE/iWARP calibration must keep the ordering.
	get := func(kind Kind) time.Duration {
		r, err := CascadeWith(fabric.IWARPParams(), kind, Shared, 16, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		return r.Last
	}
	nco, dqnl, srsl := get(NCoSED), get(DQNL), get(SRSL)
	if !(nco < srsl && srsl < dqnl) && !(nco < dqnl && nco < srsl) {
		t.Fatalf("iWARP shared cascade ordering broke: N-CoSED=%v DQNL=%v SRSL=%v", nco, dqnl, srsl)
	}
	if dqnl < 3*nco {
		t.Fatalf("iWARP: DQNL %v vs N-CoSED %v — serialization penalty missing", dqnl, nco)
	}
}

func TestNoStarvationUnderContention(t *testing.T) {
	// Every contender must make progress under sustained contention, for
	// all three designs.
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			env, m, nodes := testManager(1, kind, 5, 1)
			defer env.Shutdown()
			acquired := make([]int, 5)
			for i := 1; i < 5; i++ {
				i := i
				node := nodes[i]
				env.GoDaemon(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
					c := m.Client(node.ID)
					for {
						c.Lock(p, 0, Exclusive)
						acquired[i]++
						p.Sleep(30 * time.Microsecond)
						c.Unlock(p, 0, Exclusive)
						p.Sleep(10 * time.Microsecond)
					}
				})
			}
			if err := env.RunUntil(sim.Time(50 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			total, min := 0, int(^uint(0)>>1)
			for i := 1; i < 5; i++ {
				total += acquired[i]
				if acquired[i] < min {
					min = acquired[i]
				}
			}
			if total == 0 {
				t.Fatal("no acquisitions at all")
			}
			if min == 0 {
				t.Fatalf("%v: a contender starved: %v", kind, acquired[1:])
			}
			// Rough fairness: nobody below a third of the fair share.
			if fair := total / 4; min < fair/3 {
				t.Fatalf("%v: unfair distribution %v (min %d, fair %d)", kind, acquired[1:], min, fair)
			}
		})
	}
}

func TestTryLockSemantics(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			env, m, nodes := testManager(1, kind, 4, 1)
			defer env.Shutdown()
			env.Go("driver", func(p *sim.Proc) {
				a := m.Client(nodes[1].ID)
				b := m.Client(nodes[2].ID)
				if !a.TryLock(p, 0, Exclusive) {
					t.Error("trylock on free lock failed")
				}
				if b.TryLock(p, 0, Exclusive) {
					t.Error("trylock on held lock succeeded")
				}
				if kind != DQNL && b.TryLock(p, 0, Shared) {
					t.Error("shared trylock under exclusive succeeded")
				}
				a.Unlock(p, 0, Exclusive)
				// A failed TryLock must leave no queue state: the next
				// blocking acquire must work normally.
				b.Lock(p, 0, Exclusive)
				b.Unlock(p, 0, Exclusive)
				if !b.TryLock(p, 0, Exclusive) {
					t.Error("trylock after release failed")
				}
				b.Unlock(p, 0, Exclusive)
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTryLockSharedCoexists(t *testing.T) {
	for _, kind := range []Kind{SRSL, NCoSED} {
		env, m, nodes := testManager(1, kind, 4, 1)
		defer env.Shutdown()
		env.Go("driver", func(p *sim.Proc) {
			a := m.Client(nodes[1].ID)
			b := m.Client(nodes[2].ID)
			if !a.TryLock(p, 0, Shared) || !b.TryLock(p, 0, Shared) {
				t.Errorf("%v: shared trylocks did not coexist", kind)
			}
			c := m.Client(nodes[3].ID)
			if c.TryLock(p, 0, Exclusive) {
				t.Errorf("%v: exclusive trylock under shared holders succeeded", kind)
			}
			a.Unlock(p, 0, Shared)
			b.Unlock(p, 0, Shared)
			if !c.TryLock(p, 0, Exclusive) {
				t.Errorf("%v: exclusive trylock after shared drain failed", kind)
			}
			c.Unlock(p, 0, Exclusive)
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNCoSEDSteadyStateAllocationFree asserts the N-CoSED hot loops —
// uncontended shared/exclusive fast paths (pure FAA/CAS) and contended
// exclusive hand-offs (pooled wire messages, reused grant and successor
// futures) — allocate nothing per lock/unlock once warm.
func TestNCoSEDSteadyStateAllocationFree(t *testing.T) {
	env, m, _ := testManager(1, NCoSED, 2, 4)
	c1 := m.Client(1)
	// Uncontended fast paths on lock 0 (homed on node 0, remote to c1).
	env.GoDaemon("fast", func(p *sim.Proc) {
		for {
			c1.Lock(p, 0, Exclusive)
			c1.Unlock(p, 0, Exclusive)
			c1.Lock(p, 0, Shared)
			c1.Unlock(p, 0, Shared)
			p.Sleep(5 * time.Microsecond)
		}
	})
	// Contended exclusive ping-pong on lock 1: exercises the enqueue /
	// grant / successor-wait paths through the pooled tables.
	for n := 0; n < 2; n++ {
		cl := m.Client(n)
		env.GoDaemon(fmt.Sprintf("pingpong%d", n), func(p *sim.Proc) {
			for {
				cl.Lock(p, 1, Exclusive)
				p.Sleep(2 * time.Microsecond)
				cl.Unlock(p, 1, Exclusive)
				p.Sleep(2 * time.Microsecond)
			}
		})
	}
	limit := sim.Time(0)
	step := func() {
		limit = limit.Add(time.Millisecond)
		if err := env.RunUntil(limit); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm pools, grant/successor tables, waiter free lists
	allocs := testing.AllocsPerRun(20, step)
	if allocs > 2 {
		t.Errorf("steady-state N-CoSED lock/unlock allocates %.1f allocs per 1ms step, want ~0", allocs)
	}
	env.Shutdown()
}
