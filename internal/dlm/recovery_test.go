package dlm

import (
	"strings"
	"testing"
	"time"

	"ngdc/internal/cluster"
	"ngdc/internal/fabric"
	"ngdc/internal/faults"
	"ngdc/internal/sim"
	"ngdc/internal/verbs"
)

// TestCrashRecoveryWithinLease is the end-to-end recovery scenario: the
// exclusive N-CoSED holder is killed mid-critical-section and the queued
// waiter must be re-granted the lock within one lease interval.
func TestCrashRecoveryWithinLease(t *testing.T) {
	for _, ttl := range []time.Duration{100 * time.Microsecond, 500 * time.Microsecond} {
		res, err := MeasureRecovery(ttl, 1)
		if err != nil {
			t.Fatalf("ttl %v: %v", ttl, err)
		}
		if res.Recoveries != 1 {
			t.Errorf("ttl %v: %d recoveries, want 1", ttl, res.Recoveries)
		}
		if res.Latency <= 0 {
			t.Errorf("ttl %v: non-positive recovery latency %v", ttl, res.Latency)
		}
		// The home agent checks the holder at lease expiries, so the lock
		// must change hands within one lease interval of the crash (plus a
		// little grant-propagation slack).
		if slack := 20 * time.Microsecond; res.Latency > ttl+slack {
			t.Errorf("ttl %v: recovery latency %v exceeds one lease interval", ttl, res.Latency)
		}
	}
}

// TestCrashRecoveryFreesTailHolder covers the other repair branch: the
// dead holder had no queued successor, so the home agent resets the lock
// word and a later requester acquires with a plain CAS.
func TestCrashRecoveryFreesTailHolder(t *testing.T) {
	const (
		ttl     = 100 * time.Microsecond
		crashAt = 50 * time.Microsecond
	)
	env := sim.NewEnv(1)
	faults.Install(env, &faults.Plan{Events: []faults.Event{
		{At: crashAt, Kind: faults.Crash, Node: 1},
	}})
	nw := verbs.NewNetwork(env, fabric.DefaultParams())
	nodes := make([]*cluster.Node, 3)
	for i := range nodes {
		nodes[i] = cluster.NewNode(env, i, 2, 1<<30)
	}
	m := New(nw, nodes, Options{Kind: NCoSED, NumLocks: 1, LeaseTTL: ttl})
	env.GoDaemon("holder", func(p *sim.Proc) {
		m.Client(1).Lock(p, 0, Exclusive)
		p.Park("critical-section")
	})
	var waited time.Duration
	env.Go("late-requester", func(p *sim.Proc) {
		p.SleepUntil(sim.Time(crashAt + 2*ttl)) // well past the recovery
		start := env.Now()
		m.Client(2).Lock(p, 0, Exclusive)
		waited = time.Duration(env.Now() - start)
		m.Client(2).Unlock(p, 0, Exclusive)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.LeaseRecoveries(); got != 1 {
		t.Errorf("%d recoveries, want 1", got)
	}
	if waited > 20*time.Microsecond {
		t.Errorf("post-recovery acquire took %v, want a fast-path CAS", waited)
	}
}

// TestSharedUnderflowGuard is the regression test for the lock-word
// underflow hazard: a shared decrement while the count half is zero used
// to borrow into the exclusive-tail half and silently corrupt the queue.
// The guard must catch the unbalanced unlock loudly instead.
func TestSharedUnderflowGuard(t *testing.T) {
	env, m, _ := testManager(1, NCoSED, 3, 1)
	env.Go("driver", func(p *sim.Proc) {
		// An exclusive holder installs a non-zero tail half, the exact
		// state the borrow used to corrupt...
		m.Client(1).Lock(p, 0, Exclusive)
		// ...and an unmatched shared unlock races against it.
		m.Client(2).Unlock(p, 0, Shared)
	})
	err := env.Run()
	if err == nil {
		t.Fatal("unbalanced shared unlock went undetected")
	}
	if !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("got %v, want a shared-count underflow report", err)
	}
}

// TestLeasesPreserveContendedHandoff checks that enabling leases does not
// change protocol outcomes: a three-node exclusive chain still hands the
// lock over in queue order.
func TestLeasesPreserveContendedHandoff(t *testing.T) {
	env := sim.NewEnv(1)
	nw := verbs.NewNetwork(env, fabric.DefaultParams())
	nodes := make([]*cluster.Node, 3)
	for i := range nodes {
		nodes[i] = cluster.NewNode(env, i, 2, 1<<30)
	}
	m := New(nw, nodes, Options{Kind: NCoSED, NumLocks: 1, LeaseTTL: 200 * time.Microsecond})
	var order []int
	for i := 0; i < 3; i++ {
		id := i
		env.Go("locker", func(p *sim.Proc) {
			p.Sleep(time.Duration(id) * 5 * time.Microsecond)
			m.Client(id).Lock(p, 0, Exclusive)
			order = append(order, id)
			p.Sleep(20 * time.Microsecond)
			m.Client(id).Unlock(p, 0, Exclusive)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v, want [0 1 2]", order)
	}
	if got := m.LeaseRecoveries(); got != 0 {
		t.Errorf("%d recoveries on a healthy run, want 0", got)
	}
}
