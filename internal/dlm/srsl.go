package dlm

import (
	"fmt"

	"ngdc/internal/sim"
	"ngdc/internal/verbs"
)

// SRSL: Send/Receive-based Server Locking. Each lock's home node runs a
// server process that owns the lock state; clients interact with it purely
// through two-sided messages. Every operation therefore costs two message
// hops plus server CPU, and grant cascades are serialized through the
// server — the costs the one-sided designs remove.

const (
	srslService = "srsl"       // requests, served by the home server
	srslClient  = "srsl-grant" // grants, served by the client agent

	// srslDenied flags a refused TryLock in a grant message's arg.
	srslDenied = 1 << 8
)

// srslLockState is the server-side state of one lock.
type srslLockState struct {
	exclHolder int // node ID + 1, 0 when none
	sharedCnt  int
	queue      []wire // waiting requests in FIFO order
}

type srslServer struct {
	m     *Manager
	dev   *verbs.Device
	locks map[int]*srslLockState
}

type srslClientImpl struct {
	m      *Manager
	dev    *verbs.Device
	grants *grantTable
}

func newSRSL(m *Manager) {
	for _, node := range m.nodes {
		dev := m.nw.Attach(node)
		srv := &srslServer{m: m, dev: dev, locks: map[int]*srslLockState{}}
		cl := &srslClientImpl{m: m, dev: dev, grants: newGrantTable(node.Env(), fmt.Sprintf("%s/srsl", node.Name))}
		m.clients[node.ID] = cl
		env := node.Env()
		env.GoDaemon(fmt.Sprintf("%s/srsl-server", node.Name), srv.serve)
		env.GoDaemon(fmt.Sprintf("%s/srsl-client", node.Name), cl.serve)
	}
}

// serve is the home-node lock server loop.
func (s *srslServer) serve(p *sim.Proc) {
	for {
		msg := s.dev.Recv(p, srslService)
		// The server is an ordinary process: each request costs CPU and
		// competes with whatever else runs on the home node.
		s.dev.Node.Exec(p, ServerCPU)
		w := decodeWire(msg.Data)
		msg.Release()
		st := s.state(w.lock)
		switch w.op {
		case opLockReq:
			if s.grantable(st, Mode(w.arg)) {
				s.apply(st, w)
				s.sendGrant(p, w)
			} else {
				st.queue = append(st.queue, w)
			}
		case opTryLockReq:
			// Non-blocking: grant or deny immediately, never queue. The
			// verdict rides in the grant's arg (mode | denied bit).
			verdict := w
			verdict.op = opLockReq
			if s.grantable(st, Mode(w.arg)) {
				s.apply(st, verdict)
			} else {
				verdict.arg |= srslDenied
			}
			s.sendGrant(p, verdict)
		case opUnlockReq:
			if Mode(w.arg) == Exclusive {
				st.exclHolder = 0
			} else {
				st.sharedCnt--
			}
			s.drain(p, st)
		}
	}
}

func (s *srslServer) state(lock int) *srslLockState {
	st, ok := s.locks[lock]
	if !ok {
		st = &srslLockState{}
		s.locks[lock] = st
	}
	return st
}

func (s *srslServer) grantable(st *srslLockState, mode Mode) bool {
	if mode == Exclusive {
		return st.exclHolder == 0 && st.sharedCnt == 0
	}
	return st.exclHolder == 0
}

func (s *srslServer) apply(st *srslLockState, w wire) {
	if Mode(w.arg) == Exclusive {
		st.exclHolder = w.from + 1
	} else {
		st.sharedCnt++
	}
}

// drain grants queued requests in FIFO order while they remain
// compatible: a burst of shared requests at the head is granted together;
// an exclusive request is granted alone.
func (s *srslServer) drain(p *sim.Proc, st *srslLockState) {
	for len(st.queue) > 0 {
		head := st.queue[0]
		if !s.grantable(st, Mode(head.arg)) {
			return
		}
		st.queue = st.queue[1:]
		s.apply(st, head)
		// Each grant costs server CPU and a message: the cascade is
		// serialized through this loop.
		s.dev.Node.Exec(p, ServerCPU)
		s.sendGrant(p, head)
	}
}

func (s *srslServer) sendGrant(p *sim.Proc, req wire) {
	g := wire{op: opGrant, lock: req.lock, from: s.dev.Node.ID, arg: req.arg}
	if err := sendWire(p, s.dev, req.from, srslClient, g); err != nil {
		panic(err)
	}
}

// serve is the client-side grant dispatcher.
func (c *srslClientImpl) serve(p *sim.Proc) {
	for {
		msg := c.dev.Recv(p, srslClient)
		w := decodeWire(msg.Data)
		msg.Release()
		if w.op == opGrant {
			c.grants.grant(w.lock, w.arg)
		}
	}
}

// Lock implements Client.
func (c *srslClientImpl) Lock(p *sim.Proc, lock int, mode Mode) {
	c.m.checkLock(lock)
	fut := c.grants.arm(lock)
	req := wire{op: opLockReq, lock: lock, from: c.dev.Node.ID, arg: int(mode)}
	if err := sendWire(p, c.dev, c.m.homeNodeID(lock), srslService, req); err != nil {
		panic(err)
	}
	fut.Wait(p)
}

// TryLock implements Client: one round trip to the server, which grants
// or denies without queueing.
func (c *srslClientImpl) TryLock(p *sim.Proc, lock int, mode Mode) bool {
	c.m.checkLock(lock)
	fut := c.grants.arm(lock)
	req := wire{op: opTryLockReq, lock: lock, from: c.dev.Node.ID, arg: int(mode)}
	if err := sendWire(p, c.dev, c.m.homeNodeID(lock), srslService, req); err != nil {
		panic(err)
	}
	return fut.Wait(p)&srslDenied == 0
}

// Unlock implements Client.
func (c *srslClientImpl) Unlock(p *sim.Proc, lock int, mode Mode) {
	c.m.checkLock(lock)
	req := wire{op: opUnlockReq, lock: lock, from: c.dev.Node.ID, arg: int(mode)}
	if err := sendWire(p, c.dev, c.m.homeNodeID(lock), srslService, req); err != nil {
		panic(err)
	}
}

// NodeID implements Client.
func (c *srslClientImpl) NodeID() int { return c.dev.Node.ID }
