// Package dlm implements the paper's distributed lock management services
// in three designs, matching §4.2 and [Narravula et al., CCGrid'07]:
//
//   - SRSL — Send/Receive-based Server Locking: the traditional baseline.
//     Every lock and unlock is a two-sided message to the lock's home-node
//     server process, which maintains the wait queue and sends grants.
//
//   - DQNL — Distributed Queue-based Non-shared Locking [Devulapalli &
//     Wyckoff, ICPP'05]: a distributed MCS-style queue built from one-sided
//     compare-and-swap on a per-lock tail word at the home node. Fully
//     one-sided, but it supports only exclusive semantics: shared requests
//     are serialized through the same queue, so N concurrent readers pay N
//     sequential grant hand-offs.
//
//   - N-CoSED — Network-based Combined Shared/Exclusive Distributed
//     locking: the paper's design. Each lock is a 64-bit word at its home
//     node, the high 32 bits holding the exclusive-queue tail and the low
//     32 bits the shared-holder count. Shared lock/unlock are pure
//     fetch-and-add fast paths; exclusive lock is a compare-and-swap fast
//     path; contended hand-offs use short messages, and a cohort of shared
//     waiters is granted in one burst rather than one at a time.
//
// All three operate over the verbs layer, so their relative costs come out
// of the same fabric model the rest of the repository uses.
package dlm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"time"

	"ngdc/internal/cluster"
	"ngdc/internal/runtime"
	"ngdc/internal/sim"
	"ngdc/internal/verbs"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Kind selects a lock-manager design.
type Kind int

// The implemented designs.
const (
	SRSL Kind = iota
	DQNL
	NCoSED
)

func (k Kind) String() string {
	switch k {
	case SRSL:
		return "SRSL"
	case DQNL:
		return "DQNL"
	case NCoSED:
		return "N-CoSED"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ServerCPU is the home-server processing cost per SRSL message; the
// one-sided designs exist to avoid exactly this work.
const ServerCPU = 1500 * time.Nanosecond

// PollInterval is the local-memory polling granularity used by the
// one-sided designs when waiting for a peer's RDMA write to land.
const PollInterval = time.Microsecond

// Manager is a cluster-wide lock service of one design.
type Manager struct {
	Kind     Kind
	nw       *verbs.Network
	nodes    []*cluster.Node
	locks    int
	leaseTTL time.Duration

	clients map[int]Client
}

// Client is a node's handle to the lock service. At most one outstanding
// request per (client, lock) is supported, matching the paper's usage.
type Client interface {
	// Lock blocks until the lock is held in the given mode.
	Lock(p *sim.Proc, lock int, mode Mode)
	// TryLock attempts a non-blocking acquire, reporting success. A
	// failed attempt leaves no queue state behind.
	TryLock(p *sim.Proc, lock int, mode Mode) bool
	// Unlock releases a held lock.
	Unlock(p *sim.Proc, lock int, mode Mode)
	// NodeID returns the owning node.
	NodeID() int
}

// Options configures a lock manager, in the framework's unified
// options form: the shared ServiceOptions head selects the execution
// substrate and cross-cutting hooks.
type Options struct {
	runtime.ServiceOptions
	// Kind selects the design (SRSL, DQNL or the default N-CoSED zero
	// value is SRSL; set explicitly).
	Kind Kind
	// NumLocks bounds the lock namespace (default 64).
	NumLocks int
	// LeaseTTL enables lease-based exclusive locks on N-CoSED: holders
	// announce themselves to the lock's home agent, and a holder that
	// crashes (under an installed fault plan) is detected within one
	// lease interval — the home agent repairs the lock word and
	// re-grants the queue. Zero (the default) disables leases and keeps
	// the protocol byte-identical to the lease-free implementation.
	LeaseTTL time.Duration
}

// New builds a lock manager over nodes attached to the verbs network,
// in the framework's canonical (nw, nodes, opts) constructor form. Lock
// l is homed on nodes[l % len(nodes)].
func New(nw *verbs.Network, nodes []*cluster.Node, opts Options) *Manager {
	opts.Bind(nw.Env, "dlm")
	if opts.NumLocks <= 0 {
		opts.NumLocks = 64
	}
	kind := opts.Kind
	m := &Manager{Kind: kind, nw: nw, nodes: nodes, locks: opts.NumLocks,
		leaseTTL: opts.LeaseTTL, clients: map[int]Client{}}
	switch kind {
	case SRSL:
		newSRSL(m)
	case DQNL:
		newDQNL(m)
	case NCoSED:
		newNCoSED(m)
	default:
		panic("dlm: unknown kind")
	}
	return m
}

// Client returns the handle of the given node. It panics if the node was
// not part of the manager's construction.
func (m *Manager) Client(nodeID int) Client {
	c, ok := m.clients[nodeID]
	if !ok {
		panic(fmt.Sprintf("dlm: node %d has no client", nodeID))
	}
	return c
}

// NumLocks returns the size of the lock namespace.
func (m *Manager) NumLocks() int { return m.locks }

// LeaseTTL returns the configured exclusive-lock lease interval (zero
// when leases are disabled).
func (m *Manager) LeaseTTL() time.Duration { return m.leaseTTL }

// LeaseRecoveries returns how many crashed-holder recoveries the home
// agents have performed so far (N-CoSED with leases only).
func (m *Manager) LeaseRecoveries() int {
	n := 0
	for _, cl := range m.clients {
		if c, ok := cl.(*ncosedClientImpl); ok {
			n += c.recoveries
		}
	}
	return n
}

// home returns the home node index (into m.nodes) of a lock.
func (m *Manager) home(lock int) int { return lock % len(m.nodes) }

// homeNodeID returns the cluster node ID homing a lock.
func (m *Manager) homeNodeID(lock int) int { return m.nodes[m.home(lock)].ID }

// checkLock panics on an out-of-range lock ID (a programming error).
func (m *Manager) checkLock(lock int) {
	if lock < 0 || lock >= m.locks {
		panic(fmt.Sprintf("dlm: lock %d out of range [0,%d)", lock, m.locks))
	}
}

// Wire message layout: op(1) lock(4) from(4) arg(4), little-endian.
const msgSize = 13

// Message opcodes.
const (
	opLockReq uint8 = iota + 1
	opUnlockReq
	opGrant
	opEnqueue        // N-CoSED: "I am queued directly behind you"
	opSharedRegister // N-CoSED: "notify me when the exclusive chain drains"
	opWaitDrain      // N-CoSED: "grant me when the shared holders drain"
	opTryLockReq     // SRSL: non-blocking acquire attempt
	opHolderNotify   // N-CoSED leases: "I now hold the lock exclusively"
	opHolderRelease  // N-CoSED leases: "I freed the lock with a single CAS"
	opEnqueueCC      // N-CoSED leases: copy of opEnqueue to the home (arg = predecessor)
)

type wire struct {
	op   uint8
	lock int
	from int
	arg  int
}

func (w wire) encode() []byte {
	b := make([]byte, msgSize)
	w.encodeInto(b)
	return b
}

func (w wire) encodeInto(b []byte) {
	b[0] = w.op
	binary.LittleEndian.PutUint32(b[1:], uint32(w.lock))
	binary.LittleEndian.PutUint32(b[5:], uint32(w.from))
	binary.LittleEndian.PutUint32(b[9:], uint32(w.arg))
}

// sendWire transmits one protocol message through the device's pooled
// buffers: encode into a pool buffer, hand ownership to the receiver
// (which releases it after decoding), no per-message allocation.
func sendWire(p *sim.Proc, dev *verbs.Device, dstNode int, service string, w wire) error {
	b := dev.GetBuf(msgSize)
	w.encodeInto(b)
	return dev.SendBuf(p, dstNode, service, b)
}

func decodeWire(b []byte) wire {
	if len(b) < msgSize {
		return wire{}
	}
	return wire{
		op:   b[0],
		lock: int(binary.LittleEndian.Uint32(b[1:])),
		from: int(binary.LittleEndian.Uint32(b[5:])),
		arg:  int(binary.LittleEndian.Uint32(b[9:])),
	}
}

// grantTable tracks per-lock grant futures for a client; one outstanding
// request per lock. Each lock's future is created (and its name
// formatted) once on first use, then reused for every later request via
// Reset — the protocol's one-outstanding-request rule guarantees the
// previous waiter has consumed the grant before the lock is re-armed.
type grantTable struct {
	env     *sim.Env
	name    string
	futures map[int]*sim.Future[int]
	armed   map[int]bool
}

func newGrantTable(env *sim.Env, name string) *grantTable {
	return &grantTable{env: env, name: name,
		futures: map[int]*sim.Future[int]{}, armed: map[int]bool{}}
}

// arm registers a future for a lock; granting twice or double-arming
// panics (protocol bug).
func (g *grantTable) arm(lock int) *sim.Future[int] {
	if g.armed[lock] {
		panic(fmt.Sprintf("dlm: %s: double outstanding request on lock %d", g.name, lock))
	}
	f, ok := g.futures[lock]
	if !ok {
		f = sim.NewFuture[int](g.env, g.name+"/grant"+strconv.Itoa(lock))
		g.futures[lock] = f
	} else if f.Done() {
		f.Reset()
	}
	g.armed[lock] = true
	return f
}

// grant resolves the future for a lock.
func (g *grantTable) grant(lock, arg int) {
	if !g.armed[lock] {
		panic(fmt.Sprintf("dlm: %s: grant for lock %d with no waiter", g.name, lock))
	}
	g.armed[lock] = false
	g.futures[lock].Resolve(arg)
}
